package lazyetl_test

// Benchmarks regenerating the paper's evaluation, one benchmark family per
// experiment in DESIGN.md §4. `go test -bench=. -benchmem` runs them all;
// cmd/experiments prints the corresponding human-readable tables.

import (
	"fmt"
	"os"
	"sync"
	"testing"

	lazyetl "repro"
	"repro/internal/etl"
)

// sharedRepos caches generated repositories across benchmarks (generation
// itself is benchmarked separately in the seisgen package).
var (
	repoMu    sync.Mutex
	repoCache = map[string]string{}
)

func benchRepo(b *testing.B, key string, cfg lazyetl.RepoConfig) string {
	b.Helper()
	repoMu.Lock()
	defer repoMu.Unlock()
	if dir, ok := repoCache[key]; ok {
		return dir
	}
	dir, err := os.MkdirTemp("", "lazyetl-bench-*")
	if err != nil {
		b.Fatal(err)
	}
	cfg.Dir = dir
	if cfg.Seed == 0 {
		cfg.Seed = 1234
	}
	if _, err := lazyetl.GenerateRepository(cfg); err != nil {
		b.Fatal(err)
	}
	repoCache[key] = dir
	return dir
}

func openBench(b *testing.B, dir string, mode lazyetl.Mode, opts etl.Options) *lazyetl.Warehouse {
	b.Helper()
	w, err := lazyetl.Open(dir, lazyetl.Options{Mode: mode, ETL: opts})
	if err != nil {
		b.Fatal(err)
	}
	return w
}

func mustQuery(b *testing.B, w *lazyetl.Warehouse, q string) *lazyetl.Result {
	b.Helper()
	res, err := w.Query(q)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

const benchQuery = `SELECT F.station, MIN(D.sample_value), MAX(D.sample_value)
FROM mseed.dataview WHERE F.network = 'NL' AND F.channel = 'BHZ' GROUP BY F.station`

// BenchmarkE1_TimeToFirstAnswer measures initial load + first query, per
// mode and repository size (experiment E1 / demo point 3).
func BenchmarkE1_TimeToFirstAnswer(b *testing.B) {
	for _, days := range []int{1, 2, 4} {
		dir := benchRepo(b, fmt.Sprintf("d%d", days), lazyetl.RepoConfig{Days: days, SamplesPerDay: 20000})
		b.Run(fmt.Sprintf("files=%d/eager", 15*days), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := openBench(b, dir, lazyetl.Eager, etl.Options{})
				mustQuery(b, w, benchQuery)
			}
		})
		b.Run(fmt.Sprintf("files=%d/lazy", 15*days), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := openBench(b, dir, lazyetl.Lazy, etl.Options{})
				mustQuery(b, w, benchQuery)
			}
		})
	}
}

// BenchmarkE2_InitialLoad isolates the initial load (experiment E2).
func BenchmarkE2_InitialLoad(b *testing.B) {
	for _, days := range []int{1, 4} {
		dir := benchRepo(b, fmt.Sprintf("d%d", days), lazyetl.RepoConfig{Days: days, SamplesPerDay: 20000})
		b.Run(fmt.Sprintf("files=%d/eager", 15*days), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				openBench(b, dir, lazyetl.Eager, etl.Options{})
			}
		})
		b.Run(fmt.Sprintf("files=%d/lazy", 15*days), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				openBench(b, dir, lazyetl.Lazy, etl.Options{})
			}
		})
	}
}

// BenchmarkE3_StorageFootprint reports bytes (not time): repository size,
// eager store size, and lazy store size as benchmark metrics (experiment E3).
func BenchmarkE3_StorageFootprint(b *testing.B) {
	dir := benchRepo(b, "d2", lazyetl.RepoConfig{Days: 2, SamplesPerDay: 20000})
	b.Run("footprints", func(b *testing.B) {
		var repoBytes, eagerBytes, lazyBytes int64
		for i := 0; i < b.N; i++ {
			ew := openBench(b, dir, lazyetl.Eager, etl.Options{})
			lw := openBench(b, dir, lazyetl.Lazy, etl.Options{})
			repoBytes = ew.InitStats().RepoBytes
			eagerBytes = ew.Stats().StoreBytes
			lazyBytes = lw.Stats().StoreBytes
		}
		b.ReportMetric(float64(repoBytes), "repo-bytes")
		b.ReportMetric(float64(eagerBytes), "eager-store-bytes")
		b.ReportMetric(float64(lazyBytes), "lazy-store-bytes")
		b.ReportMetric(float64(eagerBytes)/float64(repoBytes), "blowup-x")
	})
}

// BenchmarkE4_CacheWarmup measures the same query cold (first run extracts)
// vs warm (recycler hits), plus the granularity ablation (experiment E4).
func BenchmarkE4_CacheWarmup(b *testing.B) {
	dir := benchRepo(b, "d2", lazyetl.RepoConfig{Days: 2, SamplesPerDay: 20000})
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w := openBench(b, dir, lazyetl.Lazy, etl.Options{})
			mustQuery(b, w, benchQuery)
		}
	})
	b.Run("warm", func(b *testing.B) {
		w := openBench(b, dir, lazyetl.Lazy, etl.Options{})
		mustQuery(b, w, benchQuery)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mustQuery(b, w, benchQuery)
		}
	})
	b.Run("nocache", func(b *testing.B) {
		w := openBench(b, dir, lazyetl.Lazy, etl.Options{DisableCache: true})
		mustQuery(b, w, benchQuery)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mustQuery(b, w, benchQuery)
		}
	})
}

// BenchmarkE4_Granularity compares per-record extraction against whole-file
// prefetch on a narrow query (the DESIGN.md granularity ablation).
func BenchmarkE4_Granularity(b *testing.B) {
	dir := benchRepo(b, "d2", lazyetl.RepoConfig{Days: 2, SamplesPerDay: 20000})
	narrow := `SELECT COUNT(*) FROM mseed.dataview
		WHERE F.station = 'ISK' AND F.channel = 'BHE' AND R.seqno = 1`
	for _, pre := range []bool{false, true} {
		name := "per-record"
		if pre {
			name = "whole-file"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := openBench(b, dir, lazyetl.Lazy, etl.Options{PrefetchWholeFile: pre})
				mustQuery(b, w, narrow)
			}
		})
	}
}

// BenchmarkE5_Selectivity sweeps the fraction of files a query touches
// (experiment E5): lazy cold-query time grows with the working set.
func BenchmarkE5_Selectivity(b *testing.B) {
	dir := benchRepo(b, "d2", lazyetl.RepoConfig{Days: 2, SamplesPerDay: 20000})
	queries := []struct {
		name string
		q    string
	}{
		{"files=1", `SELECT COUNT(*) FROM mseed.dataview WHERE F.station = 'ISK' AND F.channel = 'BHE' AND F.start_time < '2010-01-13'`},
		{"files=2", `SELECT COUNT(*) FROM mseed.dataview WHERE F.station = 'ISK' AND F.channel = 'BHE'`},
		{"files=10", `SELECT COUNT(*) FROM mseed.dataview WHERE F.channel = 'BHZ'`},
		{"files=30", `SELECT COUNT(*) FROM mseed.dataview`},
	}
	for _, q := range queries {
		b.Run("lazy/"+q.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := openBench(b, dir, lazyetl.Lazy, etl.Options{})
				mustQuery(b, w, q.q)
			}
		})
	}
	b.Run("eager/load+query-files=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w := openBench(b, dir, lazyetl.Eager, etl.Options{})
			mustQuery(b, w, queries[0].q)
		}
	})
}

// BenchmarkE6_Refresh measures refresh after updates (experiment E6): the
// lazy warehouse re-extracts stale records at the next query; the eager
// warehouse re-runs its full load.
func BenchmarkE6_Refresh(b *testing.B) {
	scan := `SELECT COUNT(*) FROM mseed.dataview WHERE F.channel = 'BHZ'`
	b.Run("lazy/requery-after-1-update", func(b *testing.B) {
		dir := benchRepo(b, "e6", lazyetl.RepoConfig{Days: 1, SamplesPerDay: 20000})
		w := openBench(b, dir, lazyetl.Lazy, etl.Options{})
		mustQuery(b, w, scan)
		victim := w.Engine().Repository().Files[0]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			touchFuture(b, victim.AbsPath)
			b.StartTimer()
			mustQuery(b, w, scan)
		}
	})
	b.Run("eager/full-reload", func(b *testing.B) {
		dir := benchRepo(b, "e6", lazyetl.RepoConfig{Days: 1, SamplesPerDay: 20000})
		w := openBench(b, dir, lazyetl.Eager, etl.Options{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := w.Refresh(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE7_Figure1 runs the two verbatim paper queries against a warm
// lazy warehouse (experiment E7).
func BenchmarkE7_Figure1(b *testing.B) {
	dir := benchRepo(b, "fullday", lazyetl.RepoConfig{
		SampleRate: 1, SamplesPerDay: 24 * 3600, EventsPerDay: 2,
	})
	w := openBench(b, dir, lazyetl.Lazy, etl.Options{})
	b.Run("Q1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustQuery(b, w, lazyetl.Figure1Q1)
		}
	})
	b.Run("Q2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustQuery(b, w, lazyetl.Figure1Q2)
		}
	})
}

// BenchmarkE8_EventHunt measures the full STA/LTA pipeline: range query out
// of the lazy warehouse plus detection (experiment E8).
func BenchmarkE8_EventHunt(b *testing.B) {
	dir := benchRepo(b, "fullday", lazyetl.RepoConfig{
		SampleRate: 1, SamplesPerDay: 24 * 3600, EventsPerDay: 2,
	})
	w := openBench(b, dir, lazyetl.Lazy, etl.Options{})
	q := `SELECT D.sample_time, D.sample_value FROM mseed.dataview
	      WHERE F.station = 'HGN' AND F.channel = 'BHZ' ORDER BY D.sample_time`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := mustQuery(b, w, q)
		times, _ := res.Batch.Col("D.sample_time")
		values, _ := res.Batch.Col("D.sample_value")
		if _, err := lazyetl.DetectEvents(times.Int64s(), values.Float64s(), lazyetl.EventConfig{
			SampleRate: 1, STAWindow: 80e9, LTAWindow: 600e9, TriggerOn: 6,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9_ExternalBaseline compares lazy against the external-table
// baseline on a selective query (experiment E9): the baseline extracts all
// files every time.
func BenchmarkE9_ExternalBaseline(b *testing.B) {
	dir := benchRepo(b, "d2", lazyetl.RepoConfig{Days: 2, SamplesPerDay: 20000})
	q := `SELECT COUNT(*) FROM mseed.dataview WHERE F.station = 'ISK' AND F.channel = 'BHE'`
	b.Run("lazy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w := openBench(b, dir, lazyetl.Lazy, etl.Options{})
			mustQuery(b, w, q)
		}
	})
	b.Run("external", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w := openBench(b, dir, lazyetl.External, etl.Options{})
			mustQuery(b, w, q)
		}
	})
}

// BenchmarkParallelExtraction measures the worker-pool extension: the same
// cold full-scan query with 1, 2, 4 and 8 extraction workers.
func BenchmarkParallelExtraction(b *testing.B) {
	dir := benchRepo(b, "d2", lazyetl.RepoConfig{Days: 2, SamplesPerDay: 20000})
	q := `SELECT COUNT(*) FROM mseed.dataview WHERE F.channel = 'BHZ'`
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := openBench(b, dir, lazyetl.Lazy, etl.Options{Parallelism: workers})
				mustQuery(b, w, q)
			}
		})
	}
}

// BenchmarkDerivedPruning measures the automatic record-pruning extension:
// Figure 1 Q1 without its explicit R.start_time predicates, with pruning
// derived from D.sample_time vs the full file extracted.
func BenchmarkDerivedPruning(b *testing.B) {
	dir := benchRepo(b, "fullday", lazyetl.RepoConfig{
		SampleRate: 1, SamplesPerDay: 24 * 3600, EventsPerDay: 2,
	})
	pruned := `SELECT AVG(D.sample_value) FROM mseed.dataview
		WHERE F.station = 'ISK' AND F.channel = 'BHE'
		AND D.sample_time > '2010-01-12T22:15:00.000'
		AND D.sample_time < '2010-01-12T22:15:02.000'`
	unprunable := `SELECT AVG(D.sample_value) FROM mseed.dataview
		WHERE F.station = 'ISK' AND F.channel = 'BHE'`
	b.Run("window-with-derived-pruning", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w := openBench(b, dir, lazyetl.Lazy, etl.Options{})
			mustQuery(b, w, pruned)
		}
	})
	b.Run("whole-file-no-window", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w := openBench(b, dir, lazyetl.Lazy, etl.Options{})
			mustQuery(b, w, unprunable)
		}
	})
}

// BenchmarkExtractOverlap measures the push-pipeline extension end to end:
// a ~1M-row cold scan where run N+1 is read and Steim-decoded by prefetch
// workers while run N's morsels flow through the pipeline, against the
// materializing oracle that extracts everything before computing. The warm
// variant isolates the pipeline itself (pure cache reads, no extraction).
func BenchmarkExtractOverlap(b *testing.B) {
	dir := benchRepo(b, "overlap", lazyetl.RepoConfig{Days: 2, SamplesPerDay: 35000})
	q := `SELECT COUNT(*), AVG(D.sample_value) FROM mseed.dataview WHERE D.sample_value > -100000`
	open := func(pipelined bool) *lazyetl.Warehouse {
		w, err := lazyetl.Open(dir, lazyetl.Options{
			Mode: lazyetl.Lazy, Workers: 4, NoPipeline: !pipelined,
			ETL: lazyetl.ETLOptions{Parallelism: 4},
		})
		if err != nil {
			b.Fatal(err)
		}
		return w
	}
	for _, pipelined := range []bool{false, true} {
		name := "materialize"
		if pipelined {
			name = "pipeline"
		}
		b.Run("cold/"+name, func(b *testing.B) {
			var prefetched int64
			for i := 0; i < b.N; i++ {
				w := open(pipelined)
				mustQuery(b, w, q)
				prefetched = w.Stats().Extraction.PrefetchedRuns
			}
			if pipelined {
				b.ReportMetric(float64(prefetched), "prefetched-runs")
			}
		})
		b.Run("warm/"+name, func(b *testing.B) {
			w := open(pipelined)
			mustQuery(b, w, q)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustQuery(b, w, q)
			}
		})
	}
}

// BenchmarkConcurrentQueries measures query throughput with many clients on
// one warm warehouse: the concurrent path (per-query snapshots + admission
// control) against the retained Options.SerializeQueries oracle, which
// funnels every query through one global mutex the way the pre-concurrency
// warehouse did. Workers=1 keeps each query serial so the speedup isolates
// inter-query concurrency rather than intra-query parallelism.
func BenchmarkConcurrentQueries(b *testing.B) {
	dir := benchRepo(b, "d2", lazyetl.RepoConfig{Days: 2, SamplesPerDay: 20000})
	queries := []string{
		benchQuery,
		`SELECT COUNT(*) FROM mseed.records WHERE sample_rate >= 40`,
		`SELECT network, COUNT(*) FROM mseed.files GROUP BY network ORDER BY network`,
		`SELECT COUNT(*) FROM mseed.dataview WHERE F.station = 'ISK' AND F.channel = 'BHE'`,
	}
	for _, serialize := range []bool{true, false} {
		name := "concurrent"
		if serialize {
			name = "serialized"
		}
		b.Run(name, func(b *testing.B) {
			w, err := lazyetl.Open(dir, lazyetl.Options{
				Mode: lazyetl.Lazy, Workers: 1, SerializeQueries: serialize,
			})
			if err != nil {
				b.Fatal(err)
			}
			for _, q := range queries {
				mustQuery(b, w, q) // warm the recycler cache
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					mustQueryPB(b, w, queries[i%len(queries)])
					i++
				}
			})
		})
	}
}

func mustQueryPB(b *testing.B, w *lazyetl.Warehouse, q string) {
	if _, err := w.Query(q); err != nil {
		b.Error(err)
	}
}

func touchFuture(b *testing.B, path string) {
	b.Helper()
	st, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	at := st.ModTime().Add(1e9)
	if err := os.Chtimes(path, at, at); err != nil {
		b.Fatal(err)
	}
}
