package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/seisgen"
	"repro/internal/warehouse"
)

const testQ = `SELECT F.station, COUNT(*), MIN(D.sample_value), MAX(D.sample_value)
 FROM mseed.dataview WHERE F.network = 'NL' GROUP BY F.station`

func getBody(t *testing.T, ts *httptest.Server, path string) (*http.Response, string) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

var (
	promComment = regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$`)
	promSample  = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? \S+$`)
)

// validateProm checks every line of a scrape is well-formed Prometheus
// text exposition and that every sample belongs to a # TYPE'd family.
// Returns the sample values keyed by "name{labels}".
func validateProm(t *testing.T, body string) map[string]float64 {
	t.Helper()
	typed := map[string]bool{}
	samples := map[string]float64{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !promComment.MatchString(line) {
				t.Errorf("malformed comment line: %q", line)
			}
			if f := strings.Fields(line); f[1] == "TYPE" {
				typed[f[2]] = true
			}
			continue
		}
		m := promSample.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("malformed sample line: %q", line)
			continue
		}
		base := m[1]
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if fam := strings.TrimSuffix(base, suffix); fam != base && typed[fam] {
				base = fam
				break
			}
		}
		if !typed[base] {
			t.Errorf("sample %q has no # TYPE line", m[1])
		}
		val := line[strings.LastIndexByte(line, ' ')+1:]
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Errorf("unparseable value in %q: %v", line, err)
			continue
		}
		samples[m[1]+m[2]] = v
	}
	return samples
}

func TestMetricsEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if resp, _ := postQuery(t, ts, testQ); resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	resp, body := getBody(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	samples := validateProm(t, body)
	for _, want := range []string{
		`lazyetl_query_duration_seconds_count{class="cold"}`,
		`lazyetl_query_duration_seconds_bucket{class="cold",le="+Inf"}`,
		"lazyetl_queries_total",
		"lazyetl_query_errors_total",
		"lazyetl_result_cache_hits_total",
		"lazyetl_extract_records_total",
		"lazyetl_store_bytes",
		"lazyetl_ready",
		"lazyetld_requests_served_total",
	} {
		if _, ok := samples[want]; !ok {
			t.Errorf("scrape is missing %s", want)
		}
	}
	if samples["lazyetl_queries_total"] < 1 {
		t.Errorf("lazyetl_queries_total = %v after a query", samples["lazyetl_queries_total"])
	}
	if samples["lazyetl_ready"] != 1 {
		t.Errorf("lazyetl_ready = %v, want 1", samples["lazyetl_ready"])
	}
	if samples["lazyetld_requests_served_total"] < 1 {
		t.Errorf("lazyetld_requests_served_total = %v", samples["lazyetld_requests_served_total"])
	}

	post, err := ts.Client().Post(ts.URL+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics status %d, want 405", post.StatusCode)
	}
}

func TestHealthEndpoints(t *testing.T) {
	// A larger repository than testServer's, so the cold aggregation
	// below runs long enough for the refresh drain to be observable.
	dir := t.TempDir()
	if _, err := seisgen.Generate(seisgen.RepoConfig{
		Dir:           dir,
		SamplesPerDay: 100000,
		EventsPerDay:  1,
		Seed:          42,
	}); err != nil {
		t.Fatal(err)
	}
	w, err := warehouse.Open(dir, warehouse.Options{Mode: warehouse.Lazy})
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(w, 4)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if resp, body := getBody(t, ts, "/healthz"); resp.StatusCode != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz = %d %q", resp.StatusCode, body)
	}
	if resp, body := getBody(t, ts, "/readyz"); resp.StatusCode != http.StatusOK || body != "ready\n" {
		t.Errorf("/readyz = %d %q", resp.StatusCode, body)
	}

	// Refresh drains in-flight queries before swapping state; while one
	// is running the server must report not-ready. A cold aggregation
	// over every sample keeps the warehouse busy long enough to observe
	// the window.
	queryDone := make(chan struct{})
	go func() {
		defer close(queryDone)
		_, _ = w.Query(`SELECT COUNT(*), AVG(D.sample_value) FROM mseed.dataview`)
	}()
	time.Sleep(25 * time.Millisecond)
	refreshDone := make(chan error, 1)
	go func() {
		_, err := w.Refresh()
		refreshDone <- err
	}()
	saw503 := false
	deadline := time.Now().Add(10 * time.Second)
	for !saw503 && time.Now().Before(deadline) {
		resp, body := getBody(t, ts, "/readyz")
		if resp.StatusCode == http.StatusServiceUnavailable {
			if body != "refreshing\n" {
				t.Errorf("/readyz 503 body %q", body)
			}
			saw503 = true
		}
	}
	<-queryDone
	if err := <-refreshDone; err != nil {
		t.Fatalf("refresh: %v", err)
	}
	if !saw503 {
		t.Error("never observed a 503 from /readyz during refresh")
	}
	if resp, _ := getBody(t, ts, "/readyz"); resp.StatusCode != http.StatusOK {
		t.Errorf("/readyz after refresh = %d", resp.StatusCode)
	}
}

func TestQueryTraceJSON(t *testing.T) {
	srv, _ := testServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body, _ := json.Marshal(queryRequest{SQL: testQ})
	resp, err := ts.Client().Post(ts.URL+"/query?trace=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out struct {
		RowCount int `json:"row_count"`
		Trace    *struct {
			Name     string            `json:"name"`
			Nanos    int64             `json:"nanos"`
			Children []json.RawMessage `json:"children"`
		} `json:"trace"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Trace == nil {
		t.Fatal("no trace in ?trace=1 response")
	}
	if out.Trace.Name != "query" || out.Trace.Nanos <= 0 || len(out.Trace.Children) == 0 {
		t.Errorf("trace root = %+v", out.Trace)
	}

	// Without ?trace=1 the key is absent entirely.
	_, plain := postQuery(t, ts, testQ)
	if bytes.Contains(plain, []byte(`"trace"`)) {
		t.Error("untraced response carries a trace key")
	}
}

// TestConcurrentScrapes interleaves queries, /metrics and /stats scrapes
// and warehouse refreshes (run with -race), then checks the histograms
// account for exactly the successfully served queries.
func TestConcurrentScrapes(t *testing.T) {
	srv, w := testServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var served, refreshes atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			queries := []string{
				testQ,
				`SELECT station, COUNT(*) FROM mseed.files GROUP BY station`,
				`SELECT COUNT(*) FROM mseed.records`,
			}
			for i := 0; i < 6; i++ {
				resp, _ := postQuery(t, ts, queries[(g+i)%len(queries)])
				if resp.StatusCode == http.StatusOK {
					served.Add(1)
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, body := getBody(t, ts, "/metrics")
				if resp.StatusCode != http.StatusOK {
					t.Errorf("/metrics status %d", resp.StatusCode)
				}
				validateProm(t, body)
				if resp, _ := getBody(t, ts, "/stats"); resp.StatusCode != http.StatusOK {
					t.Errorf("/stats status %d", resp.StatusCode)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if _, err := w.Refresh(); err != nil {
				t.Errorf("refresh: %v", err)
				return
			}
			refreshes.Add(1)
		}
	}()
	wg.Wait()

	_, body := getBody(t, ts, "/metrics")
	samples := validateProm(t, body)
	var queryTotal, refreshTotal float64
	for _, class := range []string{"cold", "cached", "prepared"} {
		queryTotal += samples[`lazyetl_query_duration_seconds_count{class="`+class+`"}`]
	}
	refreshTotal = samples[`lazyetl_query_duration_seconds_count{class="refresh"}`]
	if int64(queryTotal) != served.Load() {
		t.Errorf("histograms account for %v queries, served %d", queryTotal, served.Load())
	}
	if int64(refreshTotal) != refreshes.Load() {
		t.Errorf("refresh histogram count %v, want %d", refreshTotal, refreshes.Load())
	}
	for _, class := range []string{"cold", "cached", "prepared", "refresh"} {
		inf := samples[`lazyetl_query_duration_seconds_bucket{class="`+class+`",le="+Inf"}`]
		count := samples[`lazyetl_query_duration_seconds_count{class="`+class+`"}`]
		if inf != count {
			t.Errorf("class %s: +Inf bucket %v != count %v", class, inf, count)
		}
	}
}
