// Command lazyetld is the long-lived serving front-end of the warehouse:
// one process, one open warehouse, many concurrent clients over HTTP/JSON.
// It is the "millions of users sharing one scientific warehouse" shape of
// the paper's demo — where cmd/lazyetl is a single-user REPL, lazyetld
// serves the same lazy-ETL warehouse to a fleet.
//
//	lazyetld -repo DIR [-addr :8632] [-mode lazy|eager|external]
//	         [-workers N] [-mem-budget BYTES] [-max-concurrent N]
//	         [-per-client N] [-gen]
//
// Endpoints:
//
//	POST /query    {"sql": "SELECT ..."}  ->  {"columns": [...], "rows": [[...]], ...}
//	POST /explain  {"sql": "SELECT ..."}  ->  executed plan, per-scan zone-map
//	               skipping (runs/records/rows read vs skipped) and the
//	               stats-driven join order
//	POST /prepare  {"sql": "SELECT ... WHERE x = ?"}  ->  {"id": "p1", ...}
//	POST /execute  {"id": "p1", "params": ["ISK", 500]}  ->  same shape as /query
//	GET  /stats    warehouse + server counters (including the query cache)
//	GET  /metrics  Prometheus text exposition (see README.md for the names)
//	GET  /healthz  liveness: 200 once the process serves
//	GET  /readyz   readiness: 200 when serving, 503 while a refresh drains
//
// POST /query and /execute accept ?trace=1, which adds the query's span
// tree ("trace" in the response) — wall time, rows and bytes per serve
// phase and operator. -slow-query logs over-threshold queries with their
// span tree; -pprof-addr serves net/http/pprof on a separate listener.
//
// Queries execute concurrently inside the warehouse (see the concurrency
// contract in internal/warehouse): per-query snapshots, a shared memory
// ledger carved into per-query sub-budgets, and admission control at
// -max-concurrent. The server adds a per-client in-flight cap
// (-per-client, keyed by client IP) so one greedy client cannot occupy
// every admission slot, and drains in-flight queries on SIGINT/SIGTERM
// before exiting.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/column"
	"repro/internal/etl"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/seisgen"
	"repro/internal/warehouse"
)

func main() {
	repoDir := flag.String("repo", "", "mSEED repository directory (required)")
	addr := flag.String("addr", ":8632", "listen address")
	modeStr := flag.String("mode", "lazy", "warehouse mode: lazy, eager or external")
	gen := flag.Bool("gen", false, "generate a demo repository into -repo if it is missing")
	workers := flag.Int("workers", 0, "query-execution workers per query (0 = GOMAXPROCS, 1 = serial engine)")
	memBudget := flag.Int64("mem-budget", 0, "execution-memory budget in bytes, shared by all queries (0 = unlimited)")
	cache := flag.Int64("cache", 0, "recycler cache budget in bytes (0 = default 256MiB)")
	maxConcurrent := flag.Int("max-concurrent", 0, "queries admitted to execute simultaneously (0 = GOMAXPROCS)")
	perClient := flag.Int("per-client", 4, "in-flight queries allowed per client IP")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain window for in-flight queries")
	noQueryCache := flag.Bool("no-query-cache", false, "disable the two-tier query cache (plan/statement cache and snapshot-versioned result cache); every query pays full parse -> plan -> execute")
	noTrace := flag.Bool("no-trace", false, "disable per-query trace spans (?trace=1 returns no tree; latency histograms stay on)")
	slowQuery := flag.Duration("slow-query", 0, "log queries at or over this wall time at warn severity with their span tree (0 = off)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty = off)")
	flag.Parse()

	if *repoDir == "" {
		fmt.Fprintln(os.Stderr, "lazyetld: -repo is required (use -gen to create a demo repository)")
		os.Exit(2)
	}
	if *gen {
		if _, err := os.Stat(*repoDir); os.IsNotExist(err) {
			fmt.Printf("generating demo repository under %s ...\n", *repoDir)
			if _, err := seisgen.Generate(seisgen.RepoConfig{
				Dir: *repoDir, SampleRate: 1, SamplesPerDay: 24 * 3600,
				EventsPerDay: 2, Seed: 42,
			}); err != nil {
				fatal(err)
			}
		}
	}
	var mode warehouse.Mode
	switch *modeStr {
	case "lazy":
		mode = warehouse.Lazy
	case "eager":
		mode = warehouse.Eager
	case "external":
		mode = warehouse.External
	default:
		fmt.Fprintf(os.Stderr, "lazyetld: unknown mode %q\n", *modeStr)
		os.Exit(2)
	}

	start := time.Now()
	w, err := warehouse.Open(*repoDir, warehouse.Options{
		Mode:                 mode,
		Workers:              *workers,
		MemoryBudget:         *memBudget,
		MaxConcurrentQueries: *maxConcurrent,
		NoQueryCache:         *noQueryCache,
		NoTrace:              *noTrace,
		SlowQueryThreshold:   *slowQuery,
		ETL:                  etl.Options{CacheBudget: *cache},
	})
	if err != nil {
		fatal(err)
	}
	ist := w.InitStats()
	fmt.Printf("lazyetld: %v warehouse over %s: %d files, %d records loaded in %v\n",
		mode, *repoDir, ist.Files, ist.Records, time.Since(start).Round(time.Millisecond))

	srv := &http.Server{Addr: *addr, Handler: newServer(w, *perClient)}

	if *pprofAddr != "" {
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*pprofAddr, pmux); err != nil {
				fmt.Fprintf(os.Stderr, "lazyetld: pprof listener: %v\n", err)
			}
		}()
		fmt.Printf("lazyetld: pprof on %s/debug/pprof/\n", *pprofAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("lazyetld: serving on %s (POST /query, /explain, /prepare, /execute; GET /stats, /metrics, /healthz, /readyz)\n", *addr)

	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
	}
	fmt.Println("lazyetld: shutting down, draining in-flight queries ...")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "lazyetld: drain window expired: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("lazyetld: drained, bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lazyetld:", err)
	os.Exit(1)
}

// server is the HTTP surface over one warehouse. Separated from main so
// tests drive it through httptest.
type server struct {
	w   *warehouse.Warehouse
	mux *http.ServeMux

	clients *clientLimiter

	// prepared is the server-wide statement registry: /prepare parses once
	// and returns an id, /execute binds parameters per call. Bounded so a
	// client cannot grow it without limit.
	prepMu   sync.Mutex
	prepared map[string]*warehouse.Prepared
	prepSeq  int64

	served   atomic.Int64 // queries answered successfully
	failed   atomic.Int64 // queries that returned an error
	rejected atomic.Int64 // requests bounced by the per-client limit

	// metricsMu serializes /metrics scrapes over one reused buffer, so a
	// steady-state scrape allocates nothing.
	metricsMu  sync.Mutex
	metricsBuf []byte
}

// maxPreparedStatements bounds the /prepare registry.
const maxPreparedStatements = 1024

func newServer(w *warehouse.Warehouse, perClient int) *server {
	s := &server{w: w, clients: newClientLimiter(perClient), prepared: make(map[string]*warehouse.Prepared)}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/explain", s.handleExplain)
	s.mux.HandleFunc("/prepare", s.handlePrepare)
	s.mux.HandleFunc("/execute", s.handleExecute)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	return s
}

func (s *server) ServeHTTP(rw http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(rw, r) }

// queryRequest is the POST /query body.
type queryRequest struct {
	SQL string `json:"sql"`
}

// queryResponse is the POST /query answer. Trace is present only when the
// request asked for ?trace=1 and the warehouse traces (no -no-trace): the
// query's span tree, nodes of {"name", "nanos", "rows", "bytes",
// "children"} with zero fields omitted.
type queryResponse struct {
	Columns   []string      `json:"columns"`
	Rows      [][]any       `json:"rows"`
	RowCount  int           `json:"row_count"`
	ElapsedNS int64         `json:"elapsed_ns"`
	Trace     *obs.SpanNode `json:"trace,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *server) handleQuery(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(rw, http.StatusMethodNotAllowed, errorResponse{"POST only"})
		return
	}
	client := clientKey(r)
	if !s.clients.acquire(client) {
		s.rejected.Add(1)
		writeJSON(rw, http.StatusTooManyRequests,
			errorResponse{fmt.Sprintf("client %s exceeds its in-flight query limit", client)})
		return
	}
	defer s.clients.release(client)

	var req queryRequest
	dec := json.NewDecoder(http.MaxBytesReader(rw, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil || req.SQL == "" {
		if err == nil {
			err = errors.New("missing \"sql\" field")
		}
		writeJSON(rw, http.StatusBadRequest, errorResponse{"bad request: " + err.Error()})
		return
	}
	res, err := s.w.Query(req.SQL)
	if err != nil {
		s.failed.Add(1)
		writeJSON(rw, http.StatusUnprocessableEntity, errorResponse{err.Error()})
		return
	}
	s.served.Add(1)
	writeJSON(rw, http.StatusOK, marshalResult(res, wantTrace(r)))
}

// wantTrace reports whether the request asked for the span tree.
func wantTrace(r *http.Request) bool {
	v := r.URL.Query().Get("trace")
	return v == "1" || v == "true"
}

// marshalResult converts a warehouse result to the /query (and /execute)
// response shape.
func marshalResult(res *warehouse.Result, trace bool) queryResponse {
	out := queryResponse{
		Columns:   res.Columns,
		Rows:      make([][]any, res.Batch.NumRows()),
		RowCount:  res.Batch.NumRows(),
		ElapsedNS: res.Elapsed.Nanoseconds(),
	}
	if trace {
		out.Trace = res.Trace.Spans
	}
	for i := range out.Rows {
		vals := res.Batch.Row(i)
		row := make([]any, len(vals))
		for j, v := range vals {
			row[j] = jsonValue(v)
		}
		out.Rows[i] = row
	}
	return out
}

// explainResponse is the POST /explain answer: the query is executed (the
// per-scan skip tallies only exist at run time) but its rows are discarded;
// what comes back is the observability record.
type explainResponse struct {
	SQL       string            `json:"sql"`
	Plan      string            `json:"plan"`
	Scans     []plan.ScanReport `json:"scans"`
	Join      *plan.ReorderInfo `json:"join,omitempty"`
	RowCount  int               `json:"row_count"`
	ElapsedNS int64             `json:"elapsed_ns"`
}

func (s *server) handleExplain(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(rw, http.StatusMethodNotAllowed, errorResponse{"POST only"})
		return
	}
	client := clientKey(r)
	if !s.clients.acquire(client) {
		s.rejected.Add(1)
		writeJSON(rw, http.StatusTooManyRequests,
			errorResponse{fmt.Sprintf("client %s exceeds its in-flight query limit", client)})
		return
	}
	defer s.clients.release(client)

	var req queryRequest
	dec := json.NewDecoder(http.MaxBytesReader(rw, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil || req.SQL == "" {
		if err == nil {
			err = errors.New("missing \"sql\" field")
		}
		writeJSON(rw, http.StatusBadRequest, errorResponse{"bad request: " + err.Error()})
		return
	}
	// Uncached: a result-cache hit carries no per-scan skip tallies, and
	// /explain exists to observe a real execution.
	res, err := s.w.QueryUncached(req.SQL)
	if err != nil {
		s.failed.Add(1)
		writeJSON(rw, http.StatusUnprocessableEntity, errorResponse{err.Error()})
		return
	}
	s.served.Add(1)
	writeJSON(rw, http.StatusOK, explainResponse{
		SQL:       res.Trace.SQL,
		Plan:      res.Trace.Optimized,
		Scans:     res.Trace.Scans,
		Join:      res.Trace.Join,
		RowCount:  res.Batch.NumRows(),
		ElapsedNS: res.Elapsed.Nanoseconds(),
	})
}

// prepareResponse is the POST /prepare answer: the handle /execute wants,
// plus the canonical statement text and its parameter count.
type prepareResponse struct {
	ID        string `json:"id"`
	SQL       string `json:"sql"`
	NumParams int    `json:"num_params"`
}

func (s *server) handlePrepare(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(rw, http.StatusMethodNotAllowed, errorResponse{"POST only"})
		return
	}
	var req queryRequest
	dec := json.NewDecoder(http.MaxBytesReader(rw, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil || req.SQL == "" {
		if err == nil {
			err = errors.New("missing \"sql\" field")
		}
		writeJSON(rw, http.StatusBadRequest, errorResponse{"bad request: " + err.Error()})
		return
	}
	ps, err := s.w.Prepare(req.SQL)
	if err != nil {
		writeJSON(rw, http.StatusUnprocessableEntity, errorResponse{err.Error()})
		return
	}
	s.prepMu.Lock()
	if len(s.prepared) >= maxPreparedStatements {
		s.prepMu.Unlock()
		writeJSON(rw, http.StatusInsufficientStorage,
			errorResponse{fmt.Sprintf("prepared-statement registry full (%d)", maxPreparedStatements)})
		return
	}
	s.prepSeq++
	id := fmt.Sprintf("p%d", s.prepSeq)
	s.prepared[id] = ps
	s.prepMu.Unlock()
	writeJSON(rw, http.StatusOK, prepareResponse{ID: id, SQL: ps.SQL(), NumParams: ps.NumParams()})
}

// executeRequest is the POST /execute body. Params take JSON scalars:
// strings, numbers (integers stay int64, anything fractional becomes
// float64), booleans and null.
type executeRequest struct {
	ID     string `json:"id"`
	Params []any  `json:"params"`
}

func (s *server) handleExecute(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(rw, http.StatusMethodNotAllowed, errorResponse{"POST only"})
		return
	}
	client := clientKey(r)
	if !s.clients.acquire(client) {
		s.rejected.Add(1)
		writeJSON(rw, http.StatusTooManyRequests,
			errorResponse{fmt.Sprintf("client %s exceeds its in-flight query limit", client)})
		return
	}
	defer s.clients.release(client)

	var req executeRequest
	dec := json.NewDecoder(http.MaxBytesReader(rw, r.Body, 1<<20))
	dec.UseNumber() // keep integer parameters exact (no float round-trip)
	if err := dec.Decode(&req); err != nil || req.ID == "" {
		if err == nil {
			err = errors.New("missing \"id\" field")
		}
		writeJSON(rw, http.StatusBadRequest, errorResponse{"bad request: " + err.Error()})
		return
	}
	s.prepMu.Lock()
	ps, ok := s.prepared[req.ID]
	s.prepMu.Unlock()
	if !ok {
		writeJSON(rw, http.StatusNotFound, errorResponse{fmt.Sprintf("no prepared statement %q", req.ID)})
		return
	}
	params := make([]column.Value, len(req.Params))
	for i, p := range req.Params {
		v, err := paramValue(p)
		if err != nil {
			writeJSON(rw, http.StatusBadRequest, errorResponse{fmt.Sprintf("param %d: %v", i, err)})
			return
		}
		params[i] = v
	}
	res, err := ps.Execute(params...)
	if err != nil {
		s.failed.Add(1)
		writeJSON(rw, http.StatusUnprocessableEntity, errorResponse{err.Error()})
		return
	}
	s.served.Add(1)
	writeJSON(rw, http.StatusOK, marshalResult(res, wantTrace(r)))
}

// paramValue converts one decoded JSON scalar to a column value.
func paramValue(p any) (column.Value, error) {
	switch x := p.(type) {
	case nil:
		return column.NewNull(column.Int64), nil
	case string:
		return column.NewString(x), nil
	case bool:
		return column.NewBool(x), nil
	case json.Number:
		if n, err := x.Int64(); err == nil {
			return column.NewInt64(n), nil
		}
		f, err := x.Float64()
		if err != nil {
			return column.Value{}, fmt.Errorf("bad number %q", x.String())
		}
		return column.NewFloat64(f), nil
	default:
		return column.Value{}, fmt.Errorf("unsupported parameter type %T", p)
	}
}

// statsResponse decorates warehouse stats with server-level counters.
type statsResponse struct {
	Server struct {
		Served   int64 `json:"served"`
		Failed   int64 `json:"failed"`
		Rejected int64 `json:"rejected"`
	} `json:"server"`
	Warehouse warehouse.Stats `json:"warehouse"`
}

func (s *server) handleStats(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(rw, http.StatusMethodNotAllowed, errorResponse{"GET only"})
		return
	}
	var out statsResponse
	out.Server.Served = s.served.Load()
	out.Server.Failed = s.failed.Load()
	out.Server.Rejected = s.rejected.Load()
	out.Warehouse = s.w.Stats()
	writeJSON(rw, http.StatusOK, out)
}

// handleMetrics serves the Prometheus text exposition. The buffer is
// retained between scrapes so a steady-state scrape performs no
// allocations beyond the ResponseWriter's own.
func (s *server) handleMetrics(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(rw, http.StatusMethodNotAllowed, errorResponse{"GET only"})
		return
	}
	s.metricsMu.Lock()
	defer s.metricsMu.Unlock()
	b := s.metricsBuf[:0]
	b = s.w.AppendMetrics(b)
	b = obs.AppendHeader(b, "lazyetld_requests_served_total", "counter", "HTTP query/explain/execute requests answered successfully.")
	b = obs.AppendInt(b, "lazyetld_requests_served_total", "", s.served.Load())
	b = obs.AppendHeader(b, "lazyetld_requests_failed_total", "counter", "HTTP query/explain/execute requests that returned an error.")
	b = obs.AppendInt(b, "lazyetld_requests_failed_total", "", s.failed.Load())
	b = obs.AppendHeader(b, "lazyetld_requests_rejected_total", "counter", "Requests bounced by the per-client in-flight limit.")
	b = obs.AppendInt(b, "lazyetld_requests_rejected_total", "", s.rejected.Load())
	s.metricsBuf = b
	rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rw.WriteHeader(http.StatusOK)
	_, _ = rw.Write(b)
}

// handleHealthz is liveness: the process is up and serving HTTP.
func (s *server) handleHealthz(rw http.ResponseWriter, r *http.Request) {
	rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
	rw.WriteHeader(http.StatusOK)
	_, _ = rw.Write([]byte("ok\n"))
}

// handleReadyz is readiness: 200 when the warehouse serves normally, 503
// while a Refresh (including its drain of in-flight queries) is running.
func (s *server) handleReadyz(rw http.ResponseWriter, r *http.Request) {
	rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.w.Ready() {
		rw.WriteHeader(http.StatusServiceUnavailable)
		_, _ = rw.Write([]byte("refreshing\n"))
		return
	}
	rw.WriteHeader(http.StatusOK)
	_, _ = rw.Write([]byte("ready\n"))
}

func writeJSON(rw http.ResponseWriter, code int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	enc := json.NewEncoder(rw)
	_ = enc.Encode(v)
}

// jsonValue converts one column.Value to a JSON-encodable scalar. Nulls map
// to null, timestamps to their display format, and non-finite floats (which
// encoding/json rejects) to their string rendering.
func jsonValue(v column.Value) any {
	if v.Null {
		return nil
	}
	switch v.Type {
	case column.Int64:
		return v.I
	case column.Float64:
		if math.IsNaN(v.F) || math.IsInf(v.F, 0) {
			return v.String()
		}
		return v.F
	case column.Bool:
		return v.I != 0
	default: // String, Timestamp
		return v.String()
	}
}

// clientKey identifies the requesting client: the IP half of RemoteAddr.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// clientLimiter caps in-flight queries per client key.
type clientLimiter struct {
	mu    sync.Mutex
	limit int
	inUse map[string]int
}

func newClientLimiter(limit int) *clientLimiter {
	if limit <= 0 {
		limit = 4
	}
	return &clientLimiter{limit: limit, inUse: make(map[string]int)}
}

func (l *clientLimiter) acquire(key string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inUse[key] >= l.limit {
		return false
	}
	l.inUse[key]++
	return true
}

func (l *clientLimiter) release(key string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inUse[key] <= 1 {
		delete(l.inUse, key) // keep the map bounded by active clients
	} else {
		l.inUse[key]--
	}
}
