package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/column"
	"repro/internal/seisgen"
	"repro/internal/warehouse"
)

func testServer(t *testing.T) (*server, *warehouse.Warehouse) {
	t.Helper()
	dir := t.TempDir()
	if _, err := seisgen.Generate(seisgen.RepoConfig{
		Dir:           dir,
		SamplesPerDay: 2000,
		EventsPerDay:  1,
		Seed:          42,
	}); err != nil {
		t.Fatal(err)
	}
	w, err := warehouse.Open(dir, warehouse.Options{Mode: warehouse.Lazy})
	if err != nil {
		t.Fatal(err)
	}
	return newServer(w, 4), w
}

func postQuery(t *testing.T, ts *httptest.Server, sql string) (*http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(queryRequest{SQL: sql})
	resp, err := ts.Client().Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestQueryEndpoint(t *testing.T) {
	srv, w := testServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const q = "SELECT station, COUNT(*) AS n FROM mseed.files GROUP BY station ORDER BY station"
	resp, body := postQuery(t, ts, q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out queryResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad response body %s: %v", body, err)
	}
	want, err := w.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.RowCount; got != want.Batch.NumRows() {
		t.Fatalf("row_count = %d, direct query returned %d rows", got, want.Batch.NumRows())
	}
	if len(out.Columns) != len(want.Columns) {
		t.Fatalf("columns = %v, want %v", out.Columns, want.Columns)
	}
	for i := range out.Rows {
		for j, v := range want.Batch.Row(i) {
			// Compare via JSON so int64(5) and the round-tripped float64(5)
			// render identically.
			wantJSON, _ := json.Marshal(jsonValue(v))
			gotJSON, _ := json.Marshal(out.Rows[i][j])
			if !bytes.Equal(wantJSON, gotJSON) {
				t.Fatalf("row %d col %d: server sent %s, direct query has %s", i, j, gotJSON, wantJSON)
			}
		}
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	srv, _ := testServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query status = %d, want 405", resp.StatusCode)
	}

	resp2, body := postQuery(t, ts, "")
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty sql status = %d (%s), want 400", resp2.StatusCode, body)
	}

	resp3, body := postQuery(t, ts, "SELEC nonsense")
	if resp3.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad sql status = %d (%s), want 422", resp3.StatusCode, body)
	}
	if srv.failed.Load() != 1 {
		t.Fatalf("failed counter = %d, want 1", srv.failed.Load())
	}
}

func TestStatsEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if _, body := postQuery(t, ts, "SELECT COUNT(*) FROM mseed.files"); len(body) == 0 {
		t.Fatal("empty query response")
	}
	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Server.Served != 1 {
		t.Fatalf("served = %d, want 1", out.Server.Served)
	}
	if out.Warehouse.Queries != 1 {
		t.Fatalf("warehouse queries = %d, want 1", out.Warehouse.Queries)
	}
	if out.Warehouse.MaxConcurrentQueries <= 0 {
		t.Fatalf("MaxConcurrentQueries = %d, want > 0", out.Warehouse.MaxConcurrentQueries)
	}
}

func TestExplainEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Run the pruning query twice: the first execution extracts everything
	// and collects zone maps as a by-product, the second consults them.
	// seisgen amplitudes top out in the tens of thousands, so > 1e9 prunes
	// every record.
	const q = "SELECT COUNT(*) FROM mseed.dataview WHERE D.sample_value > 1000000000"
	if resp, body := postQuery(t, ts, q); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up query status %d: %s", resp.StatusCode, body)
	}
	body, _ := json.Marshal(queryRequest{SQL: q})
	resp, err := ts.Client().Post(ts.URL+"/explain", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /explain status = %d", resp.StatusCode)
	}
	var out explainResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Plan == "" {
		t.Fatal("explain response has no plan")
	}
	var skipped int64
	for _, sc := range out.Scans {
		skipped += sc.RecordsSkipped + sc.RowsSkipped
	}
	if len(out.Scans) == 0 || skipped == 0 {
		t.Fatalf("explain scans report no skipping after zone collection: %+v", out.Scans)
	}

	resp2, err := ts.Client().Get(ts.URL + "/explain")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /explain status = %d, want 405", resp2.StatusCode)
	}
}

func TestStatsReportSkipping(t *testing.T) {
	srv, _ := testServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Distinct literals so the second request re-executes (one template,
	// plan-cache hit) instead of being served from the result cache; the
	// first run collects zone maps, the second prunes with them.
	for i, q := range []string{
		"SELECT COUNT(*) FROM mseed.dataview WHERE D.sample_value > 1000000000",
		"SELECT COUNT(*) FROM mseed.dataview WHERE D.sample_value > 999999999",
	} {
		if resp, body := postQuery(t, ts, q); resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d status %d: %s", i, resp.StatusCode, body)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	ex := out.Warehouse.Extraction
	if ex.RecordsSkipped == 0 {
		t.Fatalf("extraction records skipped = 0 after pruning query, stats: %+v", ex)
	}
	if ex.RunsSkipped == 0 {
		t.Fatalf("extraction runs skipped = 0 after pruning query, stats: %+v", ex)
	}
}

// TestRepeatedQueryReportsCacheHit: the same statement twice over /query
// must surface a result-cache hit in GET /stats.
func TestRepeatedQueryReportsCacheHit(t *testing.T) {
	srv, _ := testServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const q = "SELECT station, COUNT(*) FROM mseed.files GROUP BY station"
	var bodies [2][]byte
	for i := 0; i < 2; i++ {
		resp, body := postQuery(t, ts, q)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d status %d: %s", i, resp.StatusCode, body)
		}
		bodies[i] = body
	}
	var a, b queryResponse
	if err := json.Unmarshal(bodies[0], &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(bodies[1], &b); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a.Rows) != fmt.Sprint(b.Rows) {
		t.Errorf("cached answer differs:\n%v\n%v", a.Rows, b.Rows)
	}
	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	qc := out.Warehouse.QueryCache
	if qc.ResultHits == 0 {
		t.Fatalf("repeated query reported no result-cache hit: %+v", qc)
	}
	if qc.PlanMisses == 0 || qc.ResultEntries == 0 {
		t.Fatalf("query-cache stats implausible: %+v", qc)
	}
}

func TestPrepareExecuteEndpoints(t *testing.T) {
	srv, w := testServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body, _ := json.Marshal(queryRequest{SQL: "SELECT COUNT(*) FROM mseed.dataview WHERE F.station = ? AND D.sample_value > ?"})
	resp, err := ts.Client().Post(ts.URL+"/prepare", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var prep prepareResponse
	if err := json.NewDecoder(resp.Body).Decode(&prep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prepare status %d", resp.StatusCode)
	}
	if prep.ID == "" || prep.NumParams != 2 {
		t.Fatalf("prepare response: %+v", prep)
	}

	exec := func(params ...any) (*http.Response, queryResponse, []byte) {
		t.Helper()
		body, _ := json.Marshal(executeRequest{ID: prep.ID, Params: params})
		resp, err := ts.Client().Post(ts.URL+"/execute", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		var out queryResponse
		_ = json.Unmarshal(buf.Bytes(), &out)
		return resp, out, buf.Bytes()
	}

	resp2, out, raw := exec("ISK", 500)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("execute status %d: %s", resp2.StatusCode, raw)
	}
	want, err := w.QueryUncached("SELECT COUNT(*) FROM mseed.dataview WHERE F.station = 'ISK' AND D.sample_value > 500")
	if err != nil {
		t.Fatal(err)
	}
	if out.RowCount != want.Batch.NumRows() ||
		fmt.Sprint(out.Rows[0][0]) != fmt.Sprint(jsonValue(want.Batch.Row(0)[0])) {
		t.Fatalf("execute answer %s diverged from direct query %v", raw, want.Batch.Row(0))
	}

	// Wrong parameter count is a client error, not a 500.
	resp3, _, raw3 := exec("ISK")
	if resp3.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("short param list status %d: %s", resp3.StatusCode, raw3)
	}
	// Unknown id is a 404.
	body4, _ := json.Marshal(executeRequest{ID: "p999", Params: []any{"ISK", 500}})
	resp4, err := ts.Client().Post(ts.URL+"/execute", "application/json", bytes.NewReader(body4))
	if err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id status %d, want 404", resp4.StatusCode)
	}
	// A statement with markers is rejected on the ad-hoc path.
	resp5, raw5 := postQuery(t, ts, "SELECT COUNT(*) FROM mseed.files WHERE station = ?")
	if resp5.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("raw '?' over /query status %d: %s", resp5.StatusCode, raw5)
	}
}

func TestConcurrentHTTPQueries(t *testing.T) {
	srv, w := testServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const q = "SELECT station, COUNT(*) AS n FROM mseed.files GROUP BY station ORDER BY station"
	want, err := w.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				resp, body := postQuery(t, ts, q)
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d: %s", resp.StatusCode, body)
					return
				}
				var out queryResponse
				if err := json.Unmarshal(body, &out); err != nil {
					errs <- err
					return
				}
				if out.RowCount != want.Batch.NumRows() {
					errs <- fmt.Errorf("row_count = %d, want %d", out.RowCount, want.Batch.NumRows())
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := srv.served.Load(); got != 16 {
		t.Fatalf("served = %d, want 16", got)
	}
}

func TestPerClientLimiter(t *testing.T) {
	l := newClientLimiter(2)
	if !l.acquire("a") || !l.acquire("a") {
		t.Fatal("first two acquires for client a should succeed")
	}
	if l.acquire("a") {
		t.Fatal("third acquire for client a should be rejected")
	}
	if !l.acquire("b") {
		t.Fatal("client b must not be affected by client a's load")
	}
	l.release("a")
	if !l.acquire("a") {
		t.Fatal("acquire after release should succeed")
	}
	l.release("a")
	l.release("a")
	l.release("b")
	if len(l.inUse) != 0 {
		t.Fatalf("limiter map not drained: %v", l.inUse)
	}
}

func TestPerClientLimitOverHTTP(t *testing.T) {
	srv, _ := testServer(t)
	srv.clients = newClientLimiter(1)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Hold the single slot for this client, then issue a request that must
	// bounce with 429. httptest requests all share the loopback client IP.
	key := "127.0.0.1"
	if !srv.clients.acquire(key) {
		t.Fatal("setup acquire failed")
	}
	resp, body := postQuery(t, ts, "SELECT COUNT(*) FROM mseed.files")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d (%s), want 429", resp.StatusCode, body)
	}
	if srv.rejected.Load() != 1 {
		t.Fatalf("rejected counter = %d, want 1", srv.rejected.Load())
	}
	srv.clients.release(key)
	resp2, body := postQuery(t, ts, "SELECT COUNT(*) FROM mseed.files")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("after release: status = %d (%s), want 200", resp2.StatusCode, body)
	}
}

func TestJSONValue(t *testing.T) {
	cases := []struct {
		v    column.Value
		want string
	}{
		{column.Value{Type: column.Int64, Null: true}, "null"},
		{column.Value{Type: column.Int64, I: 42}, "42"},
		{column.Value{Type: column.Float64, F: 1.5}, "1.5"},
		{column.Value{Type: column.Float64, F: math.NaN()}, `"NaN"`},
		{column.Value{Type: column.Float64, F: math.Inf(1)}, `"+Inf"`},
		{column.Value{Type: column.Bool, I: 1}, "true"},
		{column.Value{Type: column.String, S: "GE"}, `"GE"`},
	}
	for _, c := range cases {
		got, err := json.Marshal(jsonValue(c.v))
		if err != nil {
			t.Fatalf("%+v: %v", c.v, err)
		}
		if string(got) != c.want {
			t.Errorf("jsonValue(%+v) marshals to %s, want %s", c.v, got, c.want)
		}
	}
}
