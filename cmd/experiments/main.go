// Command experiments regenerates the paper's tables and figures (see
// DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	experiments [-exp e1|e2|...|e9|all] [-days 1,2,4] [-samples 20000] [-work DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (e1..e9) or 'all'")
	days := flag.String("days", "1,2,4", "comma-separated repository sizes in days (files = 15 x days)")
	samples := flag.Int("samples", 20000, "samples per series-day")
	work := flag.String("work", "", "working directory for generated repositories (default: temp)")
	seed := flag.Int64("seed", 1234, "generator seed")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var dayList []int
	for _, part := range strings.Split(*days, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "experiments: bad -days value %q\n", part)
			os.Exit(2)
		}
		dayList = append(dayList, n)
	}
	cfg := experiments.Config{
		WorkDir:       *work,
		Days:          dayList,
		SamplesPerDay: *samples,
		Seed:          *seed,
	}

	run := func(e experiments.Experiment) {
		fmt.Printf("==== %s: %s ====\n", strings.ToUpper(e.ID), e.Title)
		if err := e.Run(os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	if *exp == "all" {
		for _, e := range experiments.All() {
			run(e)
		}
		return
	}
	e, ok := experiments.Lookup(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
	run(e)
}
