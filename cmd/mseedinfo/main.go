// Command mseedinfo inspects mSEED files: per-record headers from a
// header-only scan, and optionally decoded sample statistics.
//
// Usage:
//
//	mseedinfo [-records] [-decode] FILE...
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/mseed"
	"repro/internal/seismic"
)

func main() {
	showRecords := flag.Bool("records", false, "list every record header")
	decode := flag.Bool("decode", false, "decode payloads and report amplitude statistics")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: mseedinfo [-records] [-decode] FILE...")
		os.Exit(2)
	}
	exit := 0
	for _, path := range flag.Args() {
		if err := describe(path, *showRecords, *decode); err != nil {
			fmt.Fprintf(os.Stderr, "mseedinfo: %s: %v\n", path, err)
			exit = 1
		}
	}
	os.Exit(exit)
}

func describe(path string, showRecords, decode bool) error {
	infos, err := mseed.ScanFile(path)
	if err != nil {
		return err
	}
	if len(infos) == 0 {
		fmt.Printf("%s: empty\n", path)
		return nil
	}
	first := infos[0].Header
	var samples int
	start, end := first.StartNanos(), first.EndNanos()
	for _, ri := range infos {
		samples += ri.Header.NumSamples
		if s := ri.Header.StartNanos(); s < start {
			start = s
		}
		if e := ri.Header.EndNanos(); e > end {
			end = e
		}
	}
	st, _ := os.Stat(path)
	fmt.Printf("%s:\n", path)
	fmt.Printf("  source      %s (quality %c)\n", first.SourceID(), first.Quality)
	fmt.Printf("  encoding    %v, %d-byte records, big-endian=%v\n", first.Encoding, first.RecordLength, first.BigEndian)
	fmt.Printf("  records     %d, samples %d @ %g Hz\n", len(infos), samples, first.SampleRate())
	fmt.Printf("  time range  %s - %s\n",
		time.Unix(0, start).UTC().Format(time.RFC3339Nano),
		time.Unix(0, end).UTC().Format(time.RFC3339Nano))
	if st != nil {
		fmt.Printf("  file size   %d bytes (%.2f bytes/sample)\n", st.Size(), float64(st.Size())/float64(samples))
	}

	if showRecords {
		for _, ri := range infos {
			h := ri.Header
			fmt.Printf("  seq %06d  offset %-8d %s  %4d samples  %s\n",
				h.SeqNo, ri.Offset, h.Start, h.NumSamples, h.Encoding)
		}
	}
	if decode {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		var all []float64
		for _, ri := range infos {
			s, err := mseed.ReadRecordSamples(f, ri)
			if err != nil {
				return fmt.Errorf("record %d: %w", ri.Header.SeqNo, err)
			}
			for _, v := range s {
				all = append(all, float64(v))
			}
		}
		a := seismic.Amplitude(all)
		fmt.Printf("  amplitude   min=%.0f max=%.0f mean=%.2f rms=%.2f\n", a.Min, a.Max, a.Mean, a.RMS)
	}
	return nil
}
