// Command mseedinfo inspects mSEED files: per-record headers from a
// header-only scan, and optionally decoded sample statistics.
//
// Usage:
//
//	mseedinfo [-records] [-decode] [-zones] FILE...
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/catalog"
	"repro/internal/mseed"
	"repro/internal/seismic"
)

func main() {
	showRecords := flag.Bool("records", false, "list every record header")
	decode := flag.Bool("decode", false, "decode payloads and report amplitude statistics")
	zones := flag.Bool("zones", false, "decode payloads and report zone-map statistics (sample min/max, NaN and null counts) per file, per record with -records")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: mseedinfo [-records] [-decode] [-zones] FILE...")
		os.Exit(2)
	}
	exit := 0
	for _, path := range flag.Args() {
		if err := describe(path, *showRecords, *decode, *zones); err != nil {
			fmt.Fprintf(os.Stderr, "mseedinfo: %s: %v\n", path, err)
			exit = 1
		}
	}
	os.Exit(exit)
}

func describe(path string, showRecords, decode, zones bool) error {
	infos, err := mseed.ScanFile(path)
	if err != nil {
		return err
	}
	if len(infos) == 0 {
		fmt.Printf("%s: empty\n", path)
		return nil
	}
	first := infos[0].Header
	var samples int
	start, end := first.StartNanos(), first.EndNanos()
	for _, ri := range infos {
		samples += ri.Header.NumSamples
		if s := ri.Header.StartNanos(); s < start {
			start = s
		}
		if e := ri.Header.EndNanos(); e > end {
			end = e
		}
	}
	st, _ := os.Stat(path)
	fmt.Printf("%s:\n", path)
	fmt.Printf("  source      %s (quality %c)\n", first.SourceID(), first.Quality)
	fmt.Printf("  encoding    %v, %d-byte records, big-endian=%v\n", first.Encoding, first.RecordLength, first.BigEndian)
	fmt.Printf("  records     %d, samples %d @ %g Hz\n", len(infos), samples, first.SampleRate())
	fmt.Printf("  time range  %s - %s\n",
		time.Unix(0, start).UTC().Format(time.RFC3339Nano),
		time.Unix(0, end).UTC().Format(time.RFC3339Nano))
	if st != nil {
		fmt.Printf("  file size   %d bytes (%.2f bytes/sample)\n", st.Size(), float64(st.Size())/float64(samples))
	}

	if showRecords {
		for _, ri := range infos {
			h := ri.Header
			fmt.Printf("  seq %06d  offset %-8d %s  %4d samples  %s\n",
				h.SeqNo, ri.Offset, h.Start, h.NumSamples, h.Encoding)
		}
	}
	if decode || zones {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		var all []float64
		// file is the zone-map roll-up over every record: the same
		// per-record statistics the warehouse collects lazily during
		// extraction, aggregated with CollectZone's merge semantics.
		var file catalog.ZoneEntry
		for _, ri := range infos {
			s, err := mseed.ReadRecordSamples(f, ri)
			if err != nil {
				return fmt.Errorf("record %d: %w", ri.Header.SeqNo, err)
			}
			vals := make([]float64, len(s))
			for i, v := range s {
				vals[i] = float64(v)
			}
			z := catalog.CollectZone(vals)
			if zones && showRecords {
				fmt.Printf("  seq %06d  zone min=%g max=%g samples=%d finite=%d nan=%d null=%d\n",
					ri.Header.SeqNo, z.Min, z.Max, z.Samples, z.Finite, z.NaNs, z.Nulls)
			}
			if file.Samples == 0 {
				file = z
			} else {
				if z.Finite > 0 && (file.Finite == 0 || z.Min < file.Min) {
					file.Min = z.Min
				}
				if z.Finite > 0 && (file.Finite == 0 || z.Max > file.Max) {
					file.Max = z.Max
				}
				file.Finite += z.Finite
				file.NaNs += z.NaNs
				file.Nulls += z.Nulls
				file.Samples += z.Samples
			}
			if decode {
				all = append(all, vals...)
			}
		}
		if zones {
			fmt.Printf("  zones       min=%g max=%g samples=%d finite=%d nan=%d null=%d\n",
				file.Min, file.Max, file.Samples, file.Finite, file.NaNs, file.Nulls)
		}
		if decode {
			a := seismic.Amplitude(all)
			fmt.Printf("  amplitude   min=%.0f max=%.0f mean=%.2f rms=%.2f\n", a.Min, a.Max, a.Mean, a.RMS)
		}
	}
	return nil
}
