// Command mseedgen generates synthetic mSEED repositories: one file per
// (station, channel, day), deterministic in the seed.
//
// Usage:
//
//	mseedgen -out DIR [-stations NL.HGN,NL.DBN,KO.ISK] [-channels BHZ,BHN,BHE]
//	         [-days 1] [-samples 20000] [-rate 40] [-events 0]
//	         [-encoding steim2|steim1|int32|int16|float32|float64] [-reclen 512] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/mseed"
	"repro/internal/seisgen"
)

func main() {
	out := flag.String("out", "", "output directory (required)")
	stations := flag.String("stations", "", "comma-separated NET.STA pairs (default: the demo's 5 stations)")
	channels := flag.String("channels", "", "comma-separated channel codes (default BHZ,BHN,BHE)")
	days := flag.Int("days", 1, "number of consecutive days")
	startDay := flag.String("start", "2010-01-12", "first day (YYYY-MM-DD)")
	samples := flag.Int("samples", 20000, "samples per series-day")
	rate := flag.Float64("rate", 40, "sample rate in Hz")
	events := flag.Int("events", 0, "seismic events injected per series-day")
	encoding := flag.String("encoding", "steim2", "payload encoding")
	reclen := flag.Int("reclen", 512, "record length in bytes (power of two)")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "mseedgen: -out is required")
		os.Exit(2)
	}
	cfg := seisgen.RepoConfig{
		Dir:           *out,
		Days:          *days,
		SamplesPerDay: *samples,
		SampleRate:    *rate,
		EventsPerDay:  *events,
		RecordLength:  *reclen,
		Seed:          *seed,
	}
	if *stations != "" {
		for _, s := range strings.Split(*stations, ",") {
			parts := strings.SplitN(strings.TrimSpace(s), ".", 2)
			if len(parts) != 2 {
				fmt.Fprintf(os.Stderr, "mseedgen: bad station %q (want NET.STA)\n", s)
				os.Exit(2)
			}
			cfg.Stations = append(cfg.Stations, seisgen.Station{Network: parts[0], Code: parts[1]})
		}
	}
	if *channels != "" {
		for _, c := range strings.Split(*channels, ",") {
			cfg.Channels = append(cfg.Channels, strings.TrimSpace(c))
		}
	}
	if *startDay != "" {
		day, err := time.ParseInLocation("2006-01-02", *startDay, time.UTC)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mseedgen: bad -start: %v\n", err)
			os.Exit(2)
		}
		cfg.StartDay = day
	}
	switch strings.ToLower(*encoding) {
	case "steim2":
		cfg.Encoding = mseed.EncodingSteim2
	case "steim1":
		cfg.Encoding = mseed.EncodingSteim1
	case "int32":
		cfg.Encoding = mseed.EncodingInt32
	case "int16":
		cfg.Encoding = mseed.EncodingInt16
	case "float32":
		cfg.Encoding = mseed.EncodingFloat32
	case "float64":
		cfg.Encoding = mseed.EncodingFloat64
	default:
		fmt.Fprintf(os.Stderr, "mseedgen: unknown encoding %q\n", *encoding)
		os.Exit(2)
	}

	files, err := seisgen.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mseedgen:", err)
		os.Exit(1)
	}
	var bytes int64
	for _, f := range files {
		st, err := os.Stat(f.Path)
		if err == nil {
			bytes += st.Size()
		}
	}
	fmt.Printf("wrote %d files (%.2f MB) under %s\n", len(files), float64(bytes)/(1<<20), *out)
}
