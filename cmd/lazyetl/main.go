// Command lazyetl is the interactive demonstration front-end — the
// terminal equivalent of the paper's GUI (Figure 2). Every numbered
// inspection point of the demo maps to a command:
//
//	(1) initial loading of only metadata   -> shown at startup and via \stats
//	(2) browsing metadata                  -> \tables, \schema, plain SQL on mseed.files / mseed.records
//	(3) comparing against eager ETL        -> \compare <sql>
//	(4) observing query plans              -> \plan <sql> and the trace after each query
//	(5) observing files lazily extracted   -> \touched
//	(6) plans generated for lazy transform -> \plan (optimized plan shows LazyExtract + transforms)
//	(7) cache contents and updates         -> \cache
//	(8) the operation log                  -> \log [level] [n]
//
// Usage:
//
//	lazyetl -repo DIR [-mode lazy|eager|external] [-gen] [-cache BYTES]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/column"
	"repro/internal/etl"
	"repro/internal/obs"
	"repro/internal/seisgen"
	"repro/internal/sql"
	"repro/internal/warehouse"
)

func main() {
	repoDir := flag.String("repo", "", "mSEED repository directory (required)")
	modeStr := flag.String("mode", "lazy", "warehouse mode: lazy, eager or external")
	gen := flag.Bool("gen", false, "generate a demo repository into -repo if it is empty or missing")
	cache := flag.Int64("cache", 0, "recycler cache budget in bytes (0 = default 256MiB)")
	workers := flag.Int("workers", 0, "query-execution workers (0 = GOMAXPROCS, 1 = serial engine)")
	memBudget := flag.Int64("mem-budget", 0, "execution-memory budget in bytes (0 = unlimited); joins and aggregations spill to disk under pressure, cache admissions are declined")
	noPipeline := flag.Bool("no-pipeline", false, "disable morsel-wise push pipelines; run every query on the materializing oracle engine")
	noQueryCache := flag.Bool("no-query-cache", false, "disable the two-tier query cache (plan/statement cache and snapshot-versioned result cache); every query pays full parse -> plan -> execute")
	noTrace := flag.Bool("no-trace", false, "disable per-query trace spans (\\trace shows plans only; latency histograms stay on)")
	slowQuery := flag.Duration("slow-query", 0, "log the span tree of any query at or over this duration (0 = off), e.g. 250ms")
	flag.Parse()

	if *repoDir == "" {
		fmt.Fprintln(os.Stderr, "lazyetl: -repo is required (use -gen to create a demo repository)")
		os.Exit(2)
	}
	if *gen {
		if _, err := os.Stat(*repoDir); os.IsNotExist(err) {
			fmt.Printf("generating demo repository under %s ...\n", *repoDir)
			if _, err := seisgen.Generate(seisgen.RepoConfig{
				Dir: *repoDir, SampleRate: 1, SamplesPerDay: 24 * 3600,
				EventsPerDay: 2, Seed: 42,
			}); err != nil {
				fatal(err)
			}
		}
	}

	var mode warehouse.Mode
	switch *modeStr {
	case "lazy":
		mode = warehouse.Lazy
	case "eager":
		mode = warehouse.Eager
	case "external":
		mode = warehouse.External
	default:
		fmt.Fprintf(os.Stderr, "lazyetl: unknown mode %q\n", *modeStr)
		os.Exit(2)
	}

	start := time.Now()
	w, err := warehouse.Open(*repoDir, warehouse.Options{
		Mode: mode, Workers: *workers, MemoryBudget: *memBudget,
		NoPipeline: *noPipeline, NoQueryCache: *noQueryCache,
		NoTrace: *noTrace, SlowQueryThreshold: *slowQuery,
		ETL: etl.Options{CacheBudget: *cache},
	})
	if err != nil {
		fatal(err)
	}
	ist := w.InitStats()
	fmt.Printf("lazy ETL demo — %s mode\n", mode)
	fmt.Printf("initial load: %d files, %d records, %d samples in %v (%d bytes read of %d in repo)\n",
		ist.Files, ist.Records, ist.Samples, time.Since(start).Round(time.Microsecond),
		ist.BytesRead, ist.RepoBytes)
	if mode != warehouse.Eager {
		fmt.Println("the warehouse is ready: only metadata was loaded; waveform data stays in the files")
	}
	fmt.Println(`type SQL (end with ;), or \help for demo commands`)

	repl(w, *repoDir)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lazyetl:", err)
	os.Exit(1)
}

func repl(w *warehouse.Warehouse, repoDir string) {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var lastTrace *warehouse.Trace
	var pending strings.Builder
	prepared := make(map[string]*warehouse.Prepared)

	prompt := func() {
		if pending.Len() > 0 {
			fmt.Print("   ...> ")
		} else {
			fmt.Print("lazyetl> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case strings.HasPrefix(line, `\`) && pending.Len() == 0:
			if quit := command(w, line, &lastTrace, repoDir, prepared); quit {
				return
			}
		default:
			pending.WriteString(line)
			pending.WriteByte('\n')
			if strings.HasSuffix(line, ";") {
				q := strings.TrimSuffix(strings.TrimSpace(pending.String()), ";")
				pending.Reset()
				runQuery(w, q, &lastTrace)
			}
		}
		prompt()
	}
}

func runQuery(w *warehouse.Warehouse, q string, lastTrace **warehouse.Trace) {
	res, err := w.Query(q)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(res.Batch)
	fmt.Printf("(%d rows in %v; %d files touched)\n",
		res.Batch.NumRows(), res.Elapsed.Round(time.Microsecond), len(res.Trace.TouchedFiles))
	tr := res.Trace
	*lastTrace = &tr
}

// printExplain renders the zone-map skipping and join-ordering record of a
// trace: per-scan runs/records/rows read vs skipped, and the chosen join
// order with its cardinality estimates.
func printExplain(tr *warehouse.Trace) {
	if tr.Join != nil {
		j := tr.Join
		if j.Reordered {
			fmt.Printf("-- join order (stats-driven): %s\n", strings.Join(j.Order, " -> "))
			fmt.Printf("   SQL order was: %s\n", strings.Join(j.SQLOrder, " -> "))
		} else {
			fmt.Printf("-- join order: SQL order kept: %s\n", strings.Join(j.Order, " -> "))
		}
		fmt.Printf("   estimated rows: %v\n", j.Estimates)
	}
	if len(tr.Scans) == 0 {
		fmt.Println("-- no zone-map pruning applied (no statistics yet, or no eligible predicate)")
		return
	}
	for _, s := range tr.Scans {
		if s.Target == "extract" {
			fmt.Printf("-- extract: %d runs read, %d skipped; %d records extracted, %d skipped; %d cache reads\n",
				s.Runs, s.RunsSkipped, s.Records, s.RecordsSkipped, s.CacheReads)
		} else {
			fmt.Printf("-- scan %s: %d rows fed, %d skipped by zone ranges\n", s.Target, s.Rows, s.RowsSkipped)
		}
	}
}

func command(w *warehouse.Warehouse, line string, lastTrace **warehouse.Trace, repoDir string, prepared map[string]*warehouse.Prepared) (quit bool) {
	fields := strings.Fields(line)
	cmd, rest := fields[0], strings.TrimSpace(strings.TrimPrefix(line, fields[0]))
	switch cmd {
	case `\help`, `\h`:
		fmt.Print(`commands:
  <sql>;            run a query (multi-line; terminate with ;)
  \tables           list tables and views with row counts          (demo point 2)
  \schema [name]    show columns of a table or view                (demo point 2)
  \plan <sql>       show naive and reorganized plans               (demo points 4, 6)
  \explain <sql>    run a query and show zone-map skipping + join order
  \prepare <name> <sql>      prepare a statement ('?' parameter markers)
  \execute <name> [params]   run a prepared statement ('ISK', 42, -3.5, TRUE, NULL)
  \trace            plans, injected operators and span tree of last query (demo points 4-6)
  \touched          files the last query extracted from            (demo point 5)
  \cache            recycler contents and statistics               (demo point 7)
  \log [level] [n]  last n log entries (default 20), optionally at or above
                    a severity: \log error, \log warn 50           (demo point 8)
  \stats            warehouse statistics                           (demo points 1, 3)
  \compare <sql>    run against a fresh eager warehouse and compare (demo point 3)
  \refresh          re-synchronize with the repository
  \quit             exit
`)
	case `\quit`, `\q`:
		return true
	case `\tables`:
		for _, t := range w.Catalog().Tables() {
			fmt.Printf("table %-16s %8d rows\n", t.Name, w.Store().Rows(t.Name))
		}
		for _, v := range w.Catalog().Views() {
			fmt.Printf("view  %-16s %s\n", v.Name, v.SQL)
		}
	case `\schema`:
		name := rest
		if name == "" {
			name = "mseed.dataview"
		}
		if t, ok := w.Catalog().Table(name); ok {
			for _, c := range t.Columns {
				fmt.Printf("  %-16s %s\n", c.Name, c.Type)
			}
			if len(t.PrimaryKey) > 0 {
				fmt.Printf("  primary key (%s)\n", strings.Join(t.PrimaryKey, ", "))
			}
			for _, fk := range t.ForeignKeys {
				fmt.Printf("  foreign key (%s) references %s\n", strings.Join(fk.Columns, ", "), fk.RefTable)
			}
		} else if v, ok := w.Catalog().View(name); ok {
			for _, c := range v.Columns {
				fmt.Printf("  %-16s %s\n", c.Name, c.Type)
			}
		} else {
			fmt.Printf("unknown table or view %q\n", name)
		}
	case `\plan`:
		if rest == "" {
			fmt.Println("usage: \\plan <sql>")
			break
		}
		tr, err := w.Explain(strings.TrimSuffix(rest, ";"))
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Println("-- plan as generated (before compile-time reorganization):")
		fmt.Print(tr.Naive)
		fmt.Println("-- plan after metadata-predicates-first reorganization:")
		fmt.Print(tr.Optimized)
	case `\explain`:
		if rest == "" {
			fmt.Println("usage: \\explain <sql>")
			break
		}
		// Uncached: a result-cache hit would carry no per-scan skip
		// tallies; \explain is about watching a real execution.
		res, err := w.QueryUncached(strings.TrimSuffix(rest, ";"))
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		tr := res.Trace
		*lastTrace = &tr
		fmt.Println("-- plan executed:")
		fmt.Print(tr.Optimized)
		printExplain(&tr)
		fmt.Printf("(%d rows in %v)\n", res.Batch.NumRows(), res.Elapsed.Round(time.Microsecond))
	case `\prepare`:
		parts := strings.SplitN(rest, " ", 2)
		if len(parts) < 2 || parts[0] == "" {
			fmt.Println("usage: \\prepare <name> <sql>   ('?' marks parameters)")
			break
		}
		name, src := parts[0], strings.TrimSuffix(strings.TrimSpace(parts[1]), ";")
		ps, err := w.Prepare(src)
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		prepared[name] = ps
		fmt.Printf("prepared %s (%d parameter(s)): %s\n", name, ps.NumParams(), ps.SQL())
	case `\execute`:
		parts := strings.SplitN(rest, " ", 2)
		if len(parts) == 0 || parts[0] == "" {
			fmt.Println("usage: \\execute <name> [param, ...]")
			break
		}
		ps, ok := prepared[parts[0]]
		if !ok {
			fmt.Printf("no prepared statement %q (use \\prepare)\n", parts[0])
			break
		}
		var params []column.Value
		if len(parts) == 2 {
			var err error
			if params, err = sql.ParseParams(parts[1]); err != nil {
				fmt.Println("error:", err)
				break
			}
		}
		res, err := ps.Execute(params...)
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Print(res.Batch)
		fmt.Printf("(%d rows in %v)\n", res.Batch.NumRows(), res.Elapsed.Round(time.Microsecond))
		tr := res.Trace
		*lastTrace = &tr
	case `\trace`:
		if *lastTrace == nil {
			fmt.Println("no query has run yet")
			break
		}
		tr := *lastTrace
		fmt.Println("-- optimized plan:")
		fmt.Print(tr.Optimized)
		fmt.Printf("-- operators injected at run time (%d):\n", len(tr.RuntimeOps))
		for _, op := range tr.RuntimeOps {
			fmt.Println("   ", op)
		}
		if tr.Spans != nil {
			fmt.Println("-- span tree:")
			fmt.Print(obs.Render(tr.Spans))
		}
	case `\touched`:
		if *lastTrace == nil {
			fmt.Println("no query has run yet")
			break
		}
		for _, f := range (*lastTrace).TouchedFiles {
			fmt.Println(" ", f)
		}
		fmt.Printf("(%d files)\n", len((*lastTrace).TouchedFiles))
	case `\cache`:
		contents := w.Engine().Cache().Contents()
		for i, e := range contents {
			if i >= 20 {
				fmt.Printf("  ... and %d more entries\n", len(contents)-20)
				break
			}
			fmt.Printf("  %-40s seq=%-4d %6d samples  %8d bytes  admitted %s\n",
				e.Key.URI, e.Key.SeqNo, e.Samples, e.Bytes, e.AdmittedAt.Format("15:04:05.000"))
		}
		st := w.Engine().Cache().Stats()
		fmt.Printf("%d entries, %d bytes; hits=%d misses=%d evictions=%d invalidations=%d\n",
			w.Engine().Cache().Len(), w.Engine().Cache().Used(),
			st.Hits, st.Misses, st.Evictions, st.Invalidations)
	case `\log`:
		n := 20
		min := warehouse.SeverityInfo
		for _, word := range strings.Fields(rest) {
			switch word {
			case "info":
				min = warehouse.SeverityInfo
			case "warn":
				min = warehouse.SeverityWarn
			case "error":
				min = warehouse.SeverityError
			default:
				v, err := strconv.Atoi(word)
				if err != nil || v <= 0 {
					fmt.Println(`usage: \log [info|warn|error] [n]`)
					return false
				}
				n = v
			}
		}
		log := w.Log()
		if min > warehouse.SeverityInfo {
			filtered := log[:0]
			for _, e := range log {
				if e.Level >= min {
					filtered = append(filtered, e)
				}
			}
			log = filtered
		}
		if len(log) > n {
			log = log[len(log)-n:]
		}
		for _, e := range log {
			fmt.Printf("  %6d %s %-5s %-14s %s\n",
				e.Seq, e.At.Format("15:04:05.000"), e.Level, e.Op, e.Detail)
		}
	case `\stats`:
		st := w.Stats()
		ist := w.InitStats()
		fmt.Printf("mode: %v\ninitial load: %d files, %d records, %d samples, %v, %d bytes read\n",
			st.Mode, ist.Files, ist.Records, ist.Samples, ist.Duration, ist.BytesRead)
		fmt.Printf("store: files=%d records=%d data=%d rows, %d bytes\n",
			st.FilesRows, st.RecordsRows, st.DataRows, st.StoreBytes)
		fmt.Printf("cache: %d entries, %d bytes (%s)\n", st.CacheEntries, st.CacheBytes, st.CacheStats)
		qc := st.QueryCache
		fmt.Printf("query cache: plans hits=%d misses=%d entries=%d; results hits=%d misses=%d entries=%d bytes=%d evictions=%d invalidations=%d declined=%d/%dB\n",
			qc.PlanHits, qc.PlanMisses, qc.PlanEntries,
			qc.ResultHits, qc.ResultMisses, qc.ResultEntries, qc.ResultBytes,
			qc.ResultEvictions, qc.ResultInvalidations, qc.ResultDeclined, qc.ResultDeclinedBytes)
		fmt.Printf("extraction: %d records extracted, %d cache reads, %d files opened, %d bytes read\n",
			st.Extraction.Extractions, st.Extraction.CacheReads,
			st.Extraction.FilesTouched, st.Extraction.BytesRead)
		if st.Extraction.RunsRead > 0 {
			fmt.Printf("extraction runs: %d coalesced reads, %.1f records/run, %v decoding\n",
				st.Extraction.RunsRead,
				float64(st.Extraction.RunRecords)/float64(st.Extraction.RunsRead),
				time.Duration(st.Extraction.DecodeNanos).Round(time.Microsecond))
		}
		if st.Extraction.RecordsSkipped > 0 || st.Extraction.RunsSkipped > 0 ||
			st.Exec.ScanRowsSkipped > 0 || st.Exec.JoinReorders > 0 {
			fmt.Printf("skipping: %d records pruned before decode (%d runs never read), %d scan rows skipped (%d zone ranges), %d join reorders\n",
				st.Extraction.RecordsSkipped, st.Extraction.RunsSkipped,
				st.Exec.ScanRowsSkipped, st.Exec.ScanRangesSkipped, st.Exec.JoinReorders)
		}
		if st.Extraction.PrefetchedRuns > 0 || st.Extraction.PrefetchStallNanos > 0 {
			fmt.Printf("prefetch: %d runs decoded ahead of the pipeline, %v consumer stall\n",
				st.Extraction.PrefetchedRuns,
				time.Duration(st.Extraction.PrefetchStallNanos).Round(time.Microsecond))
		}
		fmt.Printf("exec: %d joins (%d partitions, %d parallel builds, %d build + %d probe rows -> %d matches), %d radix + %d comparator sorts (%d rows, %d runs merged)\n",
			st.Exec.JoinBuilds, st.Exec.JoinBuildPartitions, st.Exec.JoinParallelBuilds,
			st.Exec.JoinBuildRows, st.Exec.JoinProbeRows, st.Exec.JoinMatches,
			st.Exec.RadixSorts, st.Exec.ComparatorSorts, st.Exec.SortRows, st.Exec.SortRunsMerged)
		if st.Exec.Pipelines > 0 || st.Exec.PipelineFallbacks > 0 {
			sel := ""
			if st.Exec.FilterRowsIn > 0 {
				sel = fmt.Sprintf("; filter stages kept %d of %d rows (%.1f%%)",
					st.Exec.FilterRowsOut, st.Exec.FilterRowsIn,
					100*float64(st.Exec.FilterRowsOut)/float64(st.Exec.FilterRowsIn))
			}
			fmt.Printf("pipelines: %d pushed (%d morsels), %d fell back to materializing%s\n",
				st.Exec.Pipelines, st.Exec.PipelineMorsels, st.Exec.PipelineFallbacks, sel)
		}
		budget := "unlimited"
		if st.Mem.Budget > 0 {
			budget = fmt.Sprintf("%d bytes", st.Mem.Budget)
		}
		fmt.Printf("mem: budget=%s used=%d high-water=%d denials=%d; spill: %d join partitions + %d agg shards (%d rows, %d bytes, %v)\n",
			budget, st.Mem.Used, st.Mem.HighWater, st.Mem.Denials,
			st.Exec.JoinPartitionsSpilled, st.Exec.AggShardsSpilled,
			st.Exec.RowsSpilled, st.Exec.BytesSpilled,
			time.Duration(st.Exec.SpillNanos).Round(time.Microsecond))
		fmt.Printf("queries: %d\n", st.Queries)
	case `\compare`:
		if rest == "" {
			fmt.Println("usage: \\compare <sql>")
			break
		}
		q := strings.TrimSuffix(rest, ";")
		t0 := time.Now()
		ew, err := warehouse.Open(repoDir, warehouse.Options{Mode: warehouse.Eager})
		if err != nil {
			fmt.Println("error opening eager warehouse:", err)
			break
		}
		eagerLoad := time.Since(t0)
		eres, err := ew.Query(q)
		if err != nil {
			fmt.Println("eager error:", err)
			break
		}
		lres, err := w.Query(q)
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Printf("%-9s load=%-12v query=%-12v total=%v\n", "eager:",
			eagerLoad.Round(time.Microsecond), eres.Elapsed.Round(time.Microsecond),
			(eagerLoad + eres.Elapsed).Round(time.Microsecond))
		fmt.Printf("%-9s load=%-12s query=%-12v total=%v (this session's warehouse, cache state as-is)\n",
			w.Mode().String()+":", "0 (done)", lres.Elapsed.Round(time.Microsecond),
			lres.Elapsed.Round(time.Microsecond))
		if eres.Batch.NumRows() == lres.Batch.NumRows() {
			fmt.Println("row counts agree:", eres.Batch.NumRows())
		} else {
			fmt.Printf("ROW COUNTS DIFFER: eager=%d %s=%d\n", eres.Batch.NumRows(), w.Mode(), lres.Batch.NumRows())
		}
	case `\refresh`:
		st, err := w.Refresh()
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Printf("refreshed: %d files, %d records in %v\n", st.Files, st.Records, st.Duration)
	default:
		fmt.Printf("unknown command %s (try \\help)\n", cmd)
	}
	return false
}
