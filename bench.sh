#!/usr/bin/env bash
# bench.sh — run the paper's E1–E9 experiment benchmarks plus the exec
# microbenchmarks with -benchmem, emitting benchstat-comparable output.
#
# Usage:
#   ./bench.sh             full run (count=5, suitable for benchstat)
#   ./bench.sh -quick      single short iteration (CI smoke / trajectory)
#   ./bench.sh E5          only benchmarks matching the given regex
#
# Compare two trees with:
#   git checkout main  && ./bench.sh > old.txt
#   git checkout my-pr && ./bench.sh > new.txt
#   benchstat old.txt new.txt
set -euo pipefail
cd "$(dirname "$0")"

count=5
benchtime=1s
pattern='E[1-9]|Filter|Aggregate|HashJoin|JoinBuild|Sort|OrderBy|Like|Steim|Extract|Spill|Pipeline|Overlap|Concurrent|Skip|JoinOrder'

for arg in "$@"; do
  case "$arg" in
    -quick)
      count=1
      benchtime=1x
      ;;
    *)
      pattern="$arg"
      ;;
  esac
done

exec go test -run '^$' -bench "$pattern" -benchmem \
  -count "$count" -benchtime "$benchtime" ./...
