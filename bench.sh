#!/usr/bin/env bash
# bench.sh — run the paper's E1–E9 experiment benchmarks plus the exec
# microbenchmarks with -benchmem, emitting benchstat-comparable output.
#
# Usage:
#   ./bench.sh             full run (count=5, suitable for benchstat)
#   ./bench.sh -quick      single short iteration (CI smoke / trajectory)
#   ./bench.sh E5          only benchmarks matching the given regex
#   ./bench.sh -json=F.json  also write the parsed results (name, ns/op,
#                            B/op, allocs/op) as a JSON array to F.json
#
# Compare two trees with:
#   git checkout main  && ./bench.sh > old.txt
#   git checkout my-pr && ./bench.sh > new.txt
#   benchstat old.txt new.txt
set -euo pipefail
cd "$(dirname "$0")"

count=5
benchtime=1s
json_out=''
pattern='E[1-9]|Filter|Aggregate|HashJoin|JoinBuild|Sort|OrderBy|Like|Steim|Extract|Spill|Pipeline|Overlap|Concurrent|Skip|JoinOrder|Prepared|ResultCache|TraceOverhead|MetricsScrape'

for arg in "$@"; do
  case "$arg" in
    -quick)
      count=1
      benchtime=1x
      ;;
    -json=*)
      json_out="${arg#-json=}"
      ;;
    *)
      pattern="$arg"
      ;;
  esac
done

if [ -z "$json_out" ]; then
  exec go test -run '^$' -bench "$pattern" -benchmem \
    -count "$count" -benchtime "$benchtime" ./...
fi

out="$(mktemp)"
trap 'rm -f "$out"' EXIT
go test -run '^$' -bench "$pattern" -benchmem \
  -count "$count" -benchtime "$benchtime" ./... | tee "$out"

awk '
  BEGIN { printf "[" }
  /^Benchmark/ && /ns\/op/ {
    name = $1; ns = ""; b = "null"; a = "null"
    for (i = 2; i < NF; i++) {
      if ($(i+1) == "ns/op")     ns = $i
      if ($(i+1) == "B/op")      b  = $i
      if ($(i+1) == "allocs/op") a  = $i
    }
    if (ns == "") next
    printf "%s\n  {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", sep, name, ns, b, a
    sep = ","
  }
  END { printf "\n]\n" }
' "$out" > "$json_out"
echo "wrote $json_out" >&2
