// Package lazyetl is a scientific data warehouse with query-driven,
// on-demand ETL, reproducing "Lazy ETL in Action: ETL Technology Dates
// Scientific Data" (Kargın et al., PVLDB 6(12), 2013) and its BIRTE 2012
// companion system.
//
// A warehouse opens over a repository of mSEED seismic waveform files. In
// Lazy mode the initial load reads only metadata (file and record headers),
// so the warehouse is queryable near-instantly; waveform samples are
// extracted, transformed and cached on demand, per query, for exactly the
// records that survive the query's metadata predicates. Eager mode performs
// the traditional full initial load, and External mode models external-
// table access (query-time extraction without metadata pruning) as a
// baseline.
//
// Query execution is morsel-driven parallel: Options.Workers sets the
// worker count (0 = GOMAXPROCS, 1 = the serial engine); results are
// bit-identical at every setting.
//
// Eligible plans run as morsel-wise push pipelines: scan, filter, join
// probe and aggregation fuse over one morsel's selection vector with no
// intermediate batch, breaking only at join build sides, sort, spill and
// the final output. Lazy extraction feeds such pipelines as a stream —
// background workers read and Steim-decode the next coalesced run while
// the current run's morsels flow through the compute stages, with prefetch
// buffers charged to the memory ledger so overlap degrades to synchronous
// extraction under budget pressure. Pipelined output is bit-identical to
// the materializing engine, which is retained behind Options.NoPipeline as
// the oracle; Stats reports pipeline, fallback and prefetch counters.
//
// Execution memory is governed by Options.MemoryBudget (bytes; 0 =
// unlimited): join tables, aggregation group tables and recycler-cache
// admissions reserve from one budget ledger, and under pressure joins and
// grouped aggregations spill partition/shard-granular state to per-query
// temp files — results stay bit-identical to the in-memory path, and
// Stats reports the ledger high-water mark and spill counters.
//
// A Warehouse serves queries concurrently: Query, Explain, Stats, Log and
// ClearLog may be called from any number of goroutines. Each query runs
// against an immutable snapshot of the catalog store and repository
// metadata; Refresh is the only writer and drains in-flight queries
// before swapping state. Admitted queries (Options.MaxConcurrentQueries
// at a time) each get a sub-budget carved from the shared memory ledger
// so one spilling query cannot starve the rest. Concurrent answers are
// bit-identical to serial execution; Options.SerializeQueries retains the
// old one-query-at-a-time path as a verification oracle. cmd/lazyetld
// serves a warehouse to many clients over HTTP/JSON.
//
// Repeated statement shapes are served through a two-tier query cache.
// Tier 1 normalizes each query (literals become positional parameters;
// whitespace and keyword case canonicalize away) and caches the parsed
// statement and the built, join-reordered plan skeleton keyed by
// (template, parameters, catalog snapshot version) — a repeated shape
// skips parse, plan and reorder entirely, and Warehouse.Prepare exposes
// the same machinery as explicit prepared statements with '?' markers.
// Tier 2 caches completed answers keyed by (normalized SQL + parameters,
// store snapshot version, repository-metadata snapshot version), guarded
// by per-file mtime/size stamps re-validated on every hit, and
// byte-charged to the shared memory ledger so cached results compete with
// the recycler cache under one budget. Refresh invalidates both tiers.
// Cached answers are bit-identical to fresh execution; the uncached path
// is retained as the verification oracle behind Options.NoQueryCache (the
// --no-query-cache flag of cmd/lazyetl and cmd/lazyetld).
//
// The query path is observable end to end. Every query carries a trace of
// spans (normalize, cache probe, parse, plan, extraction read/decode/
// prefetch-stall, pipeline stages, emit) returned in Trace.Spans and
// rendered by the \trace REPL command or POST /query?trace=1 on
// cmd/lazyetld; Options.NoTrace disables span collection (the oracle for
// proving tracing never changes answers and costs under 2% —
// BenchmarkTraceOverhead). Per-class latency histograms and counters are
// always on and exported in Prometheus text format at GET /metrics, and
// Options.SlowQueryThreshold logs the span tree of any query at or over
// the threshold into the operation log at warn severity.
//
// Quickstart:
//
//	files, _ := lazyetl.GenerateRepository(lazyetl.RepoConfig{Dir: dir, Seed: 1})
//	w, err := lazyetl.Open(dir, lazyetl.Options{Mode: lazyetl.Lazy})
//	res, err := w.Query(`SELECT F.station, MIN(D.sample_value), MAX(D.sample_value)
//	                     FROM mseed.dataview
//	                     WHERE F.network = 'NL' AND F.channel = 'BHZ'
//	                     GROUP BY F.station`)
//	fmt.Print(res.Batch)
//
// The package is a thin facade; subsystems live in internal/ packages
// (mseed format, columnar store, SQL front-end, planner, executor, ETL
// engine, recycler cache, waveform synthesis, STA/LTA analysis).
package lazyetl

import (
	"repro/internal/etl"
	"repro/internal/seisgen"
	"repro/internal/seismic"
	"repro/internal/warehouse"
)

// Re-exported core types. These aliases are the supported public API.
type (
	// Warehouse is an open scientific data warehouse over an mSEED file
	// repository.
	Warehouse = warehouse.Warehouse
	// Options configures Open.
	Options = warehouse.Options
	// ETLOptions configures the extraction engine (Options.ETL).
	ETLOptions = etl.Options
	// Mode selects eager, lazy or external-table operation.
	Mode = warehouse.Mode
	// Result is a query answer with its plan trace and touched-file list.
	Result = warehouse.Result
	// Trace carries the naive plan, the reorganized plan, and the
	// operators injected by the run-time rewrite.
	Trace = warehouse.Trace
	// InitStats describes the cost of the initial load.
	InitStats = warehouse.InitStats
	// Stats is a snapshot of warehouse counters.
	Stats = warehouse.Stats
	// Prepared is a statement prepared with Warehouse.Prepare: parsed
	// once, executed repeatedly with per-call parameter values.
	Prepared = warehouse.Prepared
	// QueryCacheStats is the observable state of the two-tier query cache
	// (Stats.QueryCache).
	QueryCacheStats = warehouse.QueryCacheStats
	// LogEntry is one line of the operation log.
	LogEntry = warehouse.LogEntry
	// Severity classifies operation-log entries (info, warn, error).
	Severity = warehouse.Severity

	// RepoConfig configures GenerateRepository.
	RepoConfig = seisgen.RepoConfig
	// Station identifies a synthetic seismograph station.
	Station = seisgen.Station
	// GeneratedFile describes one generated repository file.
	GeneratedFile = seisgen.GeneratedFile

	// EventConfig configures DetectEvents.
	EventConfig = seismic.Config
	// SeismicEvent is one detected event.
	SeismicEvent = seismic.Event
)

// Operating modes.
const (
	// Eager performs the traditional full initial load.
	Eager = warehouse.Eager
	// Lazy loads only metadata initially; data is extracted per query.
	Lazy = warehouse.Lazy
	// External extracts per query without metadata pruning (baseline).
	External = warehouse.External
)

// Operation-log severities (LogEntry.Level).
const (
	SeverityInfo  = warehouse.SeverityInfo
	SeverityWarn  = warehouse.SeverityWarn
	SeverityError = warehouse.SeverityError
)

// Open scans the mSEED repository under dir and initializes a warehouse in
// the requested mode. Options.Workers controls the morsel-driven parallel
// query engine (0 = GOMAXPROCS, 1 = serial); Options.ETL.Parallelism
// separately controls extraction parallelism.
func Open(dir string, opts Options) (*Warehouse, error) {
	return warehouse.Open(dir, opts)
}

// GenerateRepository writes a deterministic synthetic mSEED repository to
// cfg.Dir (background noise plus optional injected seismic events), the
// stand-in for a real seismic archive such as ORFEUS.
func GenerateRepository(cfg RepoConfig) ([]GeneratedFile, error) {
	return seisgen.Generate(cfg)
}

// DetectEvents runs STA/LTA event detection over a uniformly sampled
// series, typically the sample_time/sample_value columns of a query result.
func DetectEvents(times []int64, values []float64, cfg EventConfig) ([]SeismicEvent, error) {
	return seismic.DetectEvents(times, values, cfg)
}

// The two sample analytical queries of the paper's Figure 1, verbatim.
const (
	// Figure1Q1 computes a short-term average over the ISK station's BHE
	// channel within a two-second window.
	Figure1Q1 = `SELECT AVG(D.sample_value)
FROM mseed.dataview
WHERE F.station = 'ISK'
AND F.channel = 'BHE'
AND R.start_time > '2010-01-12T00:00:00.000'
AND R.start_time < '2010-01-12T23:59:59.999'
AND D.sample_time > '2010-01-12T22:15:00.000'
AND D.sample_time < '2010-01-12T22:15:02.000'`

	// Figure1Q2 computes per-station amplitude extremes over the Dutch
	// network's BHZ channels, unrestricted in time.
	Figure1Q2 = `SELECT F.station,
MIN(D.sample_value), MAX(D.sample_value)
FROM mseed.dataview
WHERE F.network = 'NL'
AND F.channel = 'BHZ'
GROUP BY F.station`
)
